//! Exponential backoff for contended retry loops.
//!
//! Used by the versioned-lock acquisition paths of the lock-based data
//! structures (lazy list, DGT tree, (a,b)-tree) and by reclaimers while they
//! briefly wait for neutralization acknowledgements.

use core::hint;

/// Exponential backoff: spin for `1, 2, 4, …` pause instructions, capped, and
/// report when the caller should yield the CPU instead.
#[derive(Debug, Clone)]
pub struct Backoff {
    step: u32,
    spin_limit: u32,
    yield_limit: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// Default spin limit: 2^6 pauses before suggesting a yield.
    pub const DEFAULT_SPIN_LIMIT: u32 = 6;
    /// Default yield limit: 2^10 pauses before the caller should park/yield.
    pub const DEFAULT_YIELD_LIMIT: u32 = 10;

    /// Creates a backoff helper with default limits.
    pub fn new() -> Self {
        Self {
            step: 0,
            spin_limit: Self::DEFAULT_SPIN_LIMIT,
            yield_limit: Self::DEFAULT_YIELD_LIMIT,
        }
    }

    /// Creates a backoff helper with custom spin/yield exponents.
    pub fn with_limits(spin_limit: u32, yield_limit: u32) -> Self {
        Self {
            step: 0,
            spin_limit,
            yield_limit: yield_limit.max(spin_limit),
        }
    }

    /// Resets the backoff to its initial state.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Spins for the current step, doubling the wait each call (capped).
    #[inline]
    pub fn spin(&mut self) {
        let limit = self.step.min(self.spin_limit);
        for _ in 0..(1u32 << limit) {
            hint::spin_loop();
        }
        if self.step <= self.yield_limit {
            self.step += 1;
        }
    }

    /// Like [`Backoff::spin`], but yields to the OS scheduler once the spin
    /// budget is exhausted. Use in loops that may wait on a descheduled thread
    /// (e.g. an oversubscribed run waiting for a lock holder).
    #[inline]
    pub fn snooze(&mut self) {
        if self.step <= self.spin_limit {
            self.spin();
        } else {
            std::thread::yield_now();
            if self.step <= self.yield_limit {
                self.step += 1;
            }
        }
    }

    /// True once the caller has spun long enough that blocking/yielding is the
    /// better strategy.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step > self.yield_limit
    }

    /// Number of times `spin`/`snooze` has been called since the last reset.
    pub fn steps(&self) -> u32 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_after_yield_limit() {
        let mut b = Backoff::with_limits(2, 4);
        assert!(!b.is_completed());
        for _ in 0..=5 {
            b.spin();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn reset_restarts_progression() {
        let mut b = Backoff::new();
        for _ in 0..8 {
            b.spin();
        }
        let before = b.steps();
        b.reset();
        assert!(b.steps() < before);
        assert_eq!(b.steps(), 0);
    }

    #[test]
    fn snooze_does_not_panic_past_limits() {
        let mut b = Backoff::with_limits(1, 2);
        for _ in 0..16 {
            b.snooze();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn with_limits_clamps_yield_to_at_least_spin() {
        let b = Backoff::with_limits(8, 2);
        assert!(b.yield_limit >= b.spin_limit);
    }
}
