//! Flat-combined scan publication.
//!
//! The ping-based schemes (NBR, NBR+, EpochPOP, HP-POP, WFE era advances)
//! pay one handshake round per reclamation scan: broadcast, await acks (or
//! help the stragglers), sweep. When two threads cross their HiWatermarks
//! at nearly the same time, the second scan stacks a second ping storm onto
//! peers that just answered the first — the broadcast-stacking problem the
//! PR-5 ride-don't-stack triage solved for NBR+ broadcasts specifically.
//!
//! [`ScanCombiner`] generalizes that idea to every ping domain: a thread
//! whose scan trigger fires while a peer's scan is mid-flight *publishes*
//! its limbo bag to a per-thread combiner slot instead of starting its own
//! round, and the next active scanner adopts every published bag at its
//! scan prologue — sweeping both threads' garbage in one ping round.
//!
//! The protocol is deliberately advisory:
//!
//! * The `active` flag is best-effort. A thread that observes it clear runs
//!   its own scan; two threads racing to set it serialize on the CAS, and
//!   the loser publishes. Nothing blocks on the flag.
//! * Publication moves *ownership* of the records (with their retire-era
//!   stamps) into the slot. The adopting scanner pushes them into its own
//!   limbo bag **before** capturing its sweep bookmark and broadcasting, so
//!   the adopted records flow through the exact same protection-checked
//!   sweep — and the same safety argument — as records the scanner retired
//!   itself. Sweeps are ownership-agnostic: every record carries its own
//!   eras, and address/reservation checks never ask who retired a record.
//! * A slot still holding an unadopted bag rejects a second publish; the
//!   would-be publisher keeps its records and retries at the next trigger.
//!   Published bags can therefore wait at most until the next scan by
//!   anyone in the domain (every scan prologue adopts), and the domain
//!   owner's `Drop` drains whatever is left after all threads deregister.

use crate::pad::CachePadded;
use crate::retired::Retired;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One thread's publication slot: `full` flags a waiting bag.
struct CombinerSlot {
    full: AtomicBool,
    bag: Mutex<Vec<Retired>>,
}

/// A flat-combining domain for reclamation scans, one per ping domain
/// (shared by NBR and NBR+ through their common neutralization core; owned
/// directly by EpochPOP, HP-POP and WFE).
pub struct ScanCombiner {
    /// Best-effort "a scan is mid-flight in this domain" flag.
    active: AtomicBool,
    slots: Vec<CachePadded<CombinerSlot>>,
}

impl ScanCombiner {
    /// A combiner with one publication slot per possible thread.
    pub fn new(max_threads: usize) -> Self {
        Self {
            active: AtomicBool::new(false),
            slots: (0..max_threads)
                .map(|_| {
                    CachePadded::new(CombinerSlot {
                        full: AtomicBool::new(false),
                        bag: Mutex::new(Vec::new()),
                    })
                })
                .collect(),
        }
    }

    /// Attempts to become the domain's active scanner. On `true` the caller
    /// must run its scan and then call [`ScanCombiner::finish`]; on `false`
    /// a peer's scan is mid-flight and the caller should publish instead.
    #[inline]
    pub fn try_begin(&self) -> bool {
        self.active
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Whether a scan is currently mid-flight (advisory snapshot).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Ends the calling thread's turn as the active scanner.
    #[inline]
    pub fn finish(&self) {
        self.active.store(false, Ordering::Release);
    }

    /// Publishes `records` to thread `tid`'s slot for the next active
    /// scanner to sweep. Fails — returning the records untouched — when the
    /// slot still holds a bag no scanner has adopted yet.
    pub fn publish(&self, tid: usize, records: Vec<Retired>) -> Result<(), Vec<Retired>> {
        crate::check::preempt("combine.handoff", tid);
        let slot = &self.slots[tid];
        let mut bag = slot.bag.lock().unwrap_or_else(|e| e.into_inner());
        if slot.full.load(Ordering::Acquire) {
            return Err(records);
        }
        *bag = records;
        slot.full.store(true, Ordering::Release);
        Ok(())
    }

    /// Adopts every published bag, returning the records and the number of
    /// bags taken. Called by the active scanner at its scan prologue, before
    /// it captures any sweep bookmark or broadcasts its pings, so adopted
    /// records are covered by the same round-trip safety argument as the
    /// scanner's own.
    pub fn adopt(&self) -> (Vec<Retired>, u64) {
        let mut out = Vec::new();
        let mut bags = 0u64;
        for (tid, slot) in self.slots.iter().enumerate() {
            if !slot.full.load(Ordering::Acquire) {
                continue;
            }
            crate::check::preempt("combine.handoff", tid);
            let mut bag = slot.bag.lock().unwrap_or_else(|e| e.into_inner());
            if !slot.full.load(Ordering::Acquire) {
                continue; // raced with another adopter
            }
            out.append(&mut bag);
            slot.full.store(false, Ordering::Release);
            bags += 1;
        }
        (out, bags)
    }
}

impl Drop for ScanCombiner {
    fn drop(&mut self) {
        // By the Smr contract every thread has deregistered before the
        // domain owner drops, so leftover published records are unreachable.
        let (orphans, _) = self.adopt();
        for r in orphans {
            // SAFETY: unreachable per the deregistration contract above —
            // the final scans/drains that ran at unregister are the last
            // possible readers.
            unsafe { r.reclaim() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::NodeHeader;
    use crate::recycle::alloc_node_raw;

    struct N {
        header: NodeHeader,
        #[allow(dead_code)]
        k: u64,
    }
    crate::impl_smr_node!(N);

    fn retired(k: u64) -> Retired {
        let raw = alloc_node_raw(N {
            header: NodeHeader::new(),
            k,
        });
        unsafe { Retired::new(raw, k) }
    }

    #[test]
    fn active_flag_is_exclusive_until_finished() {
        let c = ScanCombiner::new(2);
        assert!(c.try_begin());
        assert!(c.is_active());
        assert!(!c.try_begin(), "second scanner must be turned away");
        c.finish();
        assert!(!c.is_active());
        assert!(c.try_begin());
        c.finish();
    }

    #[test]
    fn publish_then_adopt_moves_every_record_once() {
        let c = ScanCombiner::new(4);
        c.publish(1, vec![retired(10), retired(11)]).unwrap();
        c.publish(3, vec![retired(30)]).unwrap();
        let (records, bags) = c.adopt();
        assert_eq!(bags, 2);
        assert_eq!(records.len(), 3);
        let (again, bags2) = c.adopt();
        assert_eq!(bags2, 0, "adopt must be idempotent");
        assert!(again.is_empty());
        for r in records {
            unsafe { r.reclaim() };
        }
    }

    #[test]
    fn full_slot_rejects_second_publish_and_returns_records() {
        let c = ScanCombiner::new(2);
        c.publish(0, vec![retired(1)]).unwrap();
        let back = c.publish(0, vec![retired(2), retired(3)]).unwrap_err();
        assert_eq!(back.len(), 2, "rejected publish keeps its records");
        for r in back {
            unsafe { r.reclaim() };
        }
        let (records, bags) = c.adopt();
        assert_eq!((records.len(), bags), (1, 1));
        for r in records {
            unsafe { r.reclaim() };
        }
    }

    #[test]
    fn drop_drains_unadopted_bags() {
        // Leak detection is the shadow heap's job under `check`; here we
        // just exercise the path.
        let c = ScanCombiner::new(2);
        c.publish(0, vec![retired(7)]).unwrap();
        drop(c);
    }
}
