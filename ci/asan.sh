#!/usr/bin/env bash
# Opt-in AddressSanitizer run over the smoke-matrix subset (ISSUE 6 satellite).
#
# ASan is an *independent* memory-error detector next to the smr-check shadow
# heap oracle: it catches raw heap misuse (use-after-free through the global
# allocator, buffer overflow) on the exact leaky/recycle paths the oracle
# reasons about symbolically. It needs a nightly toolchain with `rust-src`
# (std must be rebuilt with `-Zsanitizer=address`), so every precondition
# is probed and the script exits 0 with a SKIP message when one is missing —
# the CI job is opt-in, never a spurious red.
#
# Usage: ci/asan.sh [extra cargo-test args]
#   ASAN_TEST_FILTER   test name filter (default: smoke_)
#   ASAN_TOOLCHAIN     toolchain to use (default: nightly)

set -euo pipefail
cd "$(dirname "$0")/.."

TOOLCHAIN="${ASAN_TOOLCHAIN:-nightly}"
FILTER="${ASAN_TEST_FILTER:-smoke_}"

skip() {
    echo "asan: SKIP — $*"
    exit 0
}

command -v rustup >/dev/null 2>&1 || skip "rustup not installed"
rustup toolchain list 2>/dev/null | grep -q "^${TOOLCHAIN}" \
    || skip "no ${TOOLCHAIN} toolchain installed"
HOST="$(rustc -vV | sed -n 's/^host: //p')"
case "$HOST" in
    x86_64-unknown-linux-gnu|aarch64-unknown-linux-gnu) ;;
    *) skip "ASan not supported on host triple ${HOST}" ;;
esac
rustup component list --toolchain "$TOOLCHAIN" 2>/dev/null \
    | grep -q '^rust-src.*(installed)' \
    || skip "${TOOLCHAIN} lacks rust-src (needed for -Zbuild-std)"

echo "asan: running smoke-matrix subset (filter: ${FILTER}) under AddressSanitizer"
# detect_leaks=0: the Leaky reclaimer leaks by design, and arena/depot blocks
# still parked in magazines at process exit are not bugs either — ASan is
# here for use-after-free / overflow, the garbage-bound tests own leak
# accounting.
export ASAN_OPTIONS="detect_leaks=0:abort_on_error=1"
export RUSTFLAGS="-Zsanitizer=address ${RUSTFLAGS:-}"
exec cargo "+${TOOLCHAIN}" test -Zbuild-std --target "$HOST" \
    -p integration_tests --test smoke_matrix "$FILTER" "$@"
