//! Figure 5 (appendix): DGT tree throughput across key-range sizes
//! (the paper sweeps 20 K and 20 M; at CI scale 4 K and 64 K are used).
//!
//! Prints one throughput table per size; the full sweep is available via the
//! `experiments` binary (`--fig5`).

use smr_harness::experiments::{fig5_dgt_sizes, ExperimentScale};
use smr_harness::report;

fn main() {
    let mut scale = ExperimentScale::smoke();
    scale.thread_counts = vec![2];
    let sizes = [4_096u64, 65_536u64];
    let results = fig5_dgt_sizes(&scale, &sizes);
    for &size in &sizes {
        let rows: Vec<_> = results
            .iter()
            .filter(|r| r.key_range == size)
            .cloned()
            .collect();
        println!(
            "{}",
            report::to_table(&format!("Figure 5 — DGT tree, key range {size}"), &rows)
        );
    }
}
