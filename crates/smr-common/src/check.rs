//! The `smr-check` instrumentation layer: a shadow-heap lifetime oracle and
//! scheduler preemption hooks, compiled in only under the `check` cargo
//! feature.
//!
//! PR 5's marked-chain race survived four PRs of green tests because nothing
//! *watched the contracts*: a reclaimer that frees a record too early
//! corrupts memory silently, and the corruption surfaces (if ever) as an
//! unrelated assertion long after the cause. This module turns every
//! transition through the node-heap ABI into a checked event:
//!
//! * **Shadow heap** — every block handed out by `Smr::alloc` /
//!   [`recycle`](crate::recycle) is mirrored into a table keyed by address,
//!   tracking its incarnation (`Live → Retired → Freed`, then `Live` again
//!   when the block is re-issued), its birth/retire eras, and a per-block
//!   event history. Double retires, double frees, allocator re-issues of
//!   live blocks, and dereferences of freed blocks all panic immediately,
//!   at the instruction that committed them.
//! * **Protection-contract oracle** — each scheme mirrors its announcements
//!   into per-thread *claims*: hazard addresses (HP, HP-POP), per-slot eras
//!   whose hull forms the announced interval (HE, IBR), a pinned epoch
//!   (DEBRA, QSBR, RCU, EpochPOP), reservation addresses (NBR, NBR+). Every
//!   reclamation free (the single [`Retired`](crate::Retired) destroy
//!   funnel) is checked against *all* claims: freeing a record some thread's
//!   claims still cover is the premature free the scheme's own scan was
//!   supposed to rule out. The rules are conservative restatements of each
//!   family's published safety argument, so a correct scheme can never trip
//!   them (see DESIGN.md, "Checking the protection contracts").
//! * **Preemption hooks** — [`preempt`] is called from every instrumented
//!   shared-memory operation ([`Atomic`](crate::Atomic) loads/stores/CASes,
//!   ping polls and ack waits, claim updates). A registered [`Preemptor`]
//!   (the `smr-check` crate's deterministic scheduler) turns each call into
//!   a context-switch point; with none registered the call is a
//!   thread-local read.
//!
//! With the feature off every function in this module is an empty
//! `#[inline]` no-op, so the default build carries zero overhead (the
//! bench crate asserts [`compiled_in`] is false).
//!
//! # Sessions
//!
//! Checking is scoped to a [`Session`]: only blocks allocated while a
//! session is active are tracked, sessions are serialized process-wide (the
//! guard holds a global lock), and dropping the guard deactivates and clears
//! the shadow state. Tests drop the guard *before* tearing the structure
//! down so shutdown frees (orphan drains, `Drop` walks) are not checked
//! against claims of threads that no longer exist.

/// Whether the `check` feature is compiled into this build. The bench bins
/// assert this is `false` so instrumentation can never leak into a
/// measurement build.
#[inline]
pub const fn compiled_in() -> bool {
    cfg!(feature = "check")
}

/// A scheduler that turns [`preempt`] calls into context-switch points.
/// Implemented by `smr-check`'s deterministic explorer; registered per
/// worker thread via [`set_preemptor`].
pub trait Preemptor: Send + Sync {
    /// Called at every instrumented shared-memory operation. `point` is a
    /// static label ("atomic.load", "ping.poll", …) and `addr` the cell or
    /// record address involved (0 when not applicable). The implementation
    /// may block the calling thread until the scheduler selects it again.
    fn preempt(&self, point: &'static str, addr: usize);
}

#[cfg(feature = "check")]
pub use imp::*;

#[cfg(not(feature = "check"))]
pub use noop::*;

/// No-op stubs compiled when the `check` feature is off. Every hook is an
/// empty `#[inline(always)]` function, so call sites in the schemes and in
/// `Atomic`/`recycle`/`Retired` compile to nothing.
#[cfg(not(feature = "check"))]
mod noop {
    use super::Preemptor;
    use std::sync::Arc;

    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn set_preemptor(_p: Option<Arc<dyn Preemptor>>) {}
    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn set_current_tid(_tid: Option<usize>) {}
    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn preempt(_point: &'static str, _addr: usize) {}
    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn on_raw_alloc(_addr: usize) {}
    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn on_node_alloc(_addr: usize, _birth_era: u64) {}
    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn on_retire(_addr: usize, _birth_era: u64, _retire_era: u64) {}
    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn on_reclaim(_addr: usize) {}
    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn on_owner_free(_addr: usize) {}
    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn assert_live(_addr: usize) {}
    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn claim_addr(_tid: usize, _slot: usize, _addr: usize) {}
    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn claim_era(_tid: usize, _slot: usize, _era: u64) {}
    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn claim_reservations(_tid: usize, _addrs: &[usize]) {}
    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn clear_claims(_tid: usize) {}
    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn pin_epoch(_tid: usize, _epoch: u64) {}
    /// See the `check`-enabled variant; no-op in this build.
    #[inline(always)]
    pub fn unpin_epoch(_tid: usize) {}
}

#[cfg(feature = "check")]
mod imp {
    use super::Preemptor;
    use std::cell::{Cell, RefCell};
    use std::collections::BTreeMap;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

    /// Fast gate: hooks bail with one load while no session is active.
    static ACTIVE: AtomicBool = AtomicBool::new(false);

    /// Serializes sessions process-wide (`cargo test` runs tests in
    /// parallel; the shadow state is a single global table).
    fn session_mutex() -> &'static Mutex<()> {
        static M: OnceLock<Mutex<()>> = OnceLock::new();
        M.get_or_init(|| Mutex::new(()))
    }

    fn state() -> MutexGuard<'static, ShadowState> {
        static S: OnceLock<Mutex<ShadowState>> = OnceLock::new();
        S.get_or_init(|| Mutex::new(ShadowState::default()))
            .lock()
            // A violation panics while the state lock is held; the poison
            // carries no torn invariants (every mutation completes before
            // the panic), so later sessions just take the state back.
            .unwrap_or_else(PoisonError::into_inner)
    }

    thread_local! {
        static CURRENT_TID: Cell<Option<usize>> = const { Cell::new(None) };
        static PREEMPTOR: RefCell<Option<Arc<dyn Preemptor>>> = const { RefCell::new(None) };
    }

    /// Tid used for events issued by a thread that never identified itself
    /// (e.g. the test harness thread outside any registered context).
    const NO_TID: usize = usize::MAX;

    /// Installs (or clears) the calling OS thread's scheduler hook. Worker
    /// threads of the deterministic explorer install their handle before
    /// running the scenario body and clear it on exit.
    pub fn set_preemptor(p: Option<Arc<dyn Preemptor>>) {
        PREEMPTOR.with(|cell| *cell.borrow_mut() = p);
    }

    /// Declares which *scheme* thread id the calling OS thread is currently
    /// acting as. Scripted tests drive several registered contexts from one
    /// OS thread and switch this around each step; explorer workers set it
    /// once.
    pub fn set_current_tid(tid: Option<usize>) {
        CURRENT_TID.with(|cell| cell.set(tid));
    }

    fn current_tid() -> usize {
        CURRENT_TID.with(|cell| cell.get()).unwrap_or(NO_TID)
    }

    /// A context-switch point. Forwards to the thread's registered
    /// [`Preemptor`] (which may park the thread until the deterministic
    /// scheduler selects it again); a plain thread-local read when none is
    /// registered. Never touches the shadow state, so it is safe to call
    /// with no locks held — and hooks call it *before* locking.
    #[inline]
    pub fn preempt(point: &'static str, addr: usize) {
        PREEMPTOR.with(|cell| {
            if let Some(p) = cell.borrow().as_ref() {
                p.preempt(point, addr);
            }
        });
    }

    // ------------------------------------------------------------------
    // Shadow state.
    // ------------------------------------------------------------------

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Lifecycle {
        Live,
        Retired,
        Freed,
    }

    #[derive(Debug)]
    struct BlockState {
        state: Lifecycle,
        /// Incarnation counter for this address (bumped on each re-issue).
        incarnation: u64,
        birth_era: u64,
        retire_era: u64,
        /// Retire era of the *previous* incarnation, for the
        /// incarnation-disjointness rule.
        prev_retire_era: Option<u64>,
        /// Per-block event history, appended to every transition; printed
        /// with the violation so the trace is replayable by eye.
        history: Vec<String>,
    }

    #[derive(Debug, Default)]
    struct ThreadClaims {
        /// Hazard-style address claims, by slot (HP, HP-POP, and
        /// `protect_copy` destinations).
        addrs: BTreeMap<usize, usize>,
        /// Era claims, by slot. The thread's announced interval is the hull
        /// `[min, max]` over these — exactly the PR-5 era-hull scan's view
        /// (IBR announces its `[lower, upper]` pair as two pseudo-slots).
        eras: BTreeMap<usize, u64>,
        /// Epoch the thread is pinned at (EBR/POP family), if inside an op.
        pin: Option<u64>,
        /// NBR-style reservation addresses announced by `end_read_phase`.
        reservations: Vec<usize>,
    }

    #[derive(Debug, Default)]
    struct ShadowState {
        session: Option<SessionData>,
    }

    #[derive(Debug, Default)]
    struct SessionData {
        label: String,
        /// Enforce `birth ≥ previous incarnation's retire era` on re-issued
        /// blocks (only meaningful for the interval schemes, whose `alloc`
        /// overrides stamp after the magazine pop; the default `alloc`
        /// stamps before it, which is benign for every scheme that uses it).
        birth_era_monotonic: bool,
        tripped: bool,
        violation: Option<Violation>,
        blocks: BTreeMap<usize, BlockState>,
        threads: BTreeMap<usize, ThreadClaims>,
        /// Global event ring (most recent last), included in violations.
        events: VecDeque<String>,
    }

    /// A detected contract violation: what rule fired, on which address,
    /// with the block's history and the most recent global events.
    #[derive(Debug, Clone)]
    pub struct Violation {
        /// Short machine-matchable rule name (e.g. `premature-free/era-hull`).
        pub rule: String,
        /// Full human-readable description.
        pub message: String,
        /// The offending block's per-incarnation event history.
        pub block_history: Vec<String>,
        /// Tail of the global event ring at the time of the violation.
        pub recent_events: Vec<String>,
    }

    impl std::fmt::Display for Violation {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            writeln!(f, "[{}] {}", self.rule, self.message)?;
            writeln!(f, "  block history:")?;
            for e in &self.block_history {
                writeln!(f, "    {e}")?;
            }
            writeln!(f, "  recent events:")?;
            for e in &self.recent_events {
                writeln!(f, "    {e}")?;
            }
            Ok(())
        }
    }

    /// Options for [`begin_session`].
    #[derive(Debug, Clone, Default)]
    pub struct SessionConfig {
        /// Printed in every event/violation (scheme + scenario name).
        pub label: String,
        /// Enable the incarnation-disjointness rule (IBR/HE sessions only;
        /// see [`SessionData::birth_era_monotonic`]).
        pub birth_era_monotonic: bool,
    }

    /// An active checking session. Dropping it deactivates checking and
    /// clears the shadow state; the process-wide session lock is released.
    pub struct Session {
        _serial: MutexGuard<'static, ()>,
    }

    /// Starts a checking session. Blocks until any other session (in another
    /// test) has ended. All node-heap traffic between this call and the
    /// guard's drop is tracked and checked.
    pub fn begin_session(cfg: SessionConfig) -> Session {
        let serial = session_mutex()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut st = state();
        st.session = Some(SessionData {
            label: cfg.label,
            birth_era_monotonic: cfg.birth_era_monotonic,
            ..SessionData::default()
        });
        ACTIVE.store(true, Ordering::SeqCst);
        Session { _serial: serial }
    }

    impl Drop for Session {
        fn drop(&mut self) {
            ACTIVE.store(false, Ordering::SeqCst);
            state().session = None;
        }
    }

    /// Takes the violation recorded by the current session, if any. The
    /// explorer calls this after catching a worker panic to attach the
    /// oracle's structured report to the schedule failure.
    pub fn take_violation() -> Option<Violation> {
        state().session.as_mut().and_then(|s| s.violation.take())
    }

    /// Whether a session is currently active (diagnostics).
    pub fn session_active() -> bool {
        ACTIVE.load(Ordering::SeqCst)
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    const EVENT_RING: usize = 96;

    impl SessionData {
        fn note(&mut self, event: String) {
            if self.events.len() == EVENT_RING {
                self.events.pop_front();
            }
            self.events.push_back(event);
        }

        fn violate(&mut self, rule: &str, message: String, addr: usize) -> ! {
            self.tripped = true;
            let block_history = self
                .blocks
                .get(&addr)
                .map(|b| b.history.clone())
                .unwrap_or_default();
            let v = Violation {
                rule: rule.to_string(),
                message: format!("[{}] {message}", self.label),
                block_history,
                recent_events: self.events.iter().cloned().collect(),
            };
            let text = v.to_string();
            self.violation = Some(v);
            panic!("smr-check violation: {text}");
        }
    }

    /// Runs `f` on the active, untripped session (no-op otherwise). The
    /// tripped check makes a violation panic single-shot: unwinding drops
    /// contexts and structures whose teardown re-enters these hooks, and a
    /// second panic during unwind would abort the process.
    fn with_session(f: impl FnOnce(&mut SessionData)) {
        if !ACTIVE.load(Ordering::Relaxed) {
            return;
        }
        let mut st = state();
        if let Some(s) = st.session.as_mut() {
            if !s.tripped {
                f(s);
            }
        }
    }

    // ------------------------------------------------------------------
    // Node-heap lifecycle hooks.
    // ------------------------------------------------------------------

    /// A block left the node-heap ABI's allocation path (fresh from the
    /// global allocator or re-issued from a magazine/depot bin). Starts a
    /// new `Live` incarnation; re-issuing a block whose previous incarnation
    /// was not `Freed` is an allocator-level double-issue.
    pub fn on_raw_alloc(addr: usize) {
        with_session(|s| {
            let tid = current_tid();
            match s.blocks.get_mut(&addr) {
                Some(b) => {
                    if b.state != Lifecycle::Freed {
                        let st = b.state;
                        s.violate(
                            "allocator/reissued-live-block",
                            format!(
                                "block {addr:#x} re-issued by the allocator while its previous \
                                 incarnation is still {st:?}"
                            ),
                            addr,
                        );
                    }
                    b.incarnation += 1;
                    b.state = Lifecycle::Live;
                    b.prev_retire_era = Some(b.retire_era);
                    b.birth_era = 0;
                    b.retire_era = 0;
                    let inc = b.incarnation;
                    b.history.push(format!("alloc[inc {inc}] by t{tid}"));
                }
                None => {
                    s.blocks.insert(
                        addr,
                        BlockState {
                            state: Lifecycle::Live,
                            incarnation: 0,
                            birth_era: 0,
                            retire_era: 0,
                            prev_retire_era: None,
                            history: vec![format!("alloc[inc 0] by t{tid}")],
                        },
                    );
                }
            }
            s.note(format!("t{tid} alloc {addr:#x}"));
        });
    }

    /// `Smr::alloc` finished stamping the block's birth era (for the
    /// interval schemes: *after* the magazine pop). Also enforces the
    /// incarnation-disjointness rule when the session enables it: a
    /// re-issued block stamped with an era older than its previous
    /// incarnation's retire era gives one address two overlapping lifetime
    /// intervals — the pre-PR-5 stamp-before-pop bug `recycle_aba.rs` pins.
    pub fn on_node_alloc(addr: usize, birth_era: u64) {
        with_session(|s| {
            let tid = current_tid();
            let monotonic = s.birth_era_monotonic;
            if let Some(b) = s.blocks.get_mut(&addr) {
                b.birth_era = birth_era;
                b.history.push(format!("stamp birth={birth_era} by t{tid}"));
                if monotonic {
                    if let Some(prev) = b.prev_retire_era {
                        if birth_era < prev {
                            s.violate(
                                "recycle/overlapping-incarnations",
                                format!(
                                    "block {addr:#x} re-stamped with birth era {birth_era} < \
                                     previous incarnation's retire era {prev}: the two \
                                     lifetime intervals of one address overlap (stale \
                                     stamp-before-pop)"
                                ),
                                addr,
                            );
                        }
                    }
                }
            }
        });
    }

    /// A record entered limbo (the single `Retired::new` funnel).
    pub fn on_retire(addr: usize, birth_era: u64, retire_era: u64) {
        with_session(|s| {
            let tid = current_tid();
            s.note(format!(
                "t{tid} retire {addr:#x} [{birth_era}, {retire_era}]"
            ));
            if let Some(b) = s.blocks.get_mut(&addr) {
                match b.state {
                    Lifecycle::Live => {
                        b.state = Lifecycle::Retired;
                        b.birth_era = birth_era;
                        b.retire_era = retire_era;
                        b.history
                            .push(format!("retire [{birth_era}, {retire_era}] by t{tid}"));
                    }
                    Lifecycle::Retired => s.violate(
                        "lifecycle/double-retire",
                        format!("block {addr:#x} retired twice (single-retire rule)"),
                        addr,
                    ),
                    Lifecycle::Freed => s.violate(
                        "lifecycle/retire-after-free",
                        format!("block {addr:#x} retired after it was already freed"),
                        addr,
                    ),
                }
            }
        });
    }

    /// A reclamation scan is destroying the record (the single
    /// `destroy_erased` funnel). **This is the protection-contract check**:
    /// the scan just claimed no thread can still reach the record, so any
    /// standing claim covering it is a premature free.
    pub fn on_reclaim(addr: usize) {
        with_session(|s| {
            let tid = current_tid();
            s.note(format!("t{tid} reclaim {addr:#x}"));
            let Some(b) = s.blocks.get(&addr) else { return };
            match b.state {
                Lifecycle::Freed => s.violate(
                    "lifecycle/double-free",
                    format!("block {addr:#x} reclaimed twice"),
                    addr,
                ),
                Lifecycle::Live => s.violate(
                    "lifecycle/free-without-retire",
                    format!("block {addr:#x} reclaimed while still live (never retired)"),
                    addr,
                ),
                Lifecycle::Retired => {}
            }
            let (birth, retire) = (b.birth_era, b.retire_era);
            // The claims check proper. Each rule restates one family's
            // safety argument; threads that never issue a claim type are
            // vacuously compatible with its rule.
            let mut failure: Option<(String, String)> = None;
            for (&t, claims) in s.threads.iter() {
                if let Some(slot) = claims
                    .addrs
                    .iter()
                    .find_map(|(&slot, &a)| (a == addr).then_some(slot))
                {
                    failure = Some((
                        "premature-free/hazard".into(),
                        format!(
                            "record {addr:#x} freed while thread {t}'s hazard slot {slot} \
                             still covers its address"
                        ),
                    ));
                    break;
                }
                // The freeing thread's own reservations are exempt: the real
                // reclaimers skip the collector's slot
                // (`collect_reservations_into`), which is sound because the
                // write phase that reserved a record is the one that retired
                // it and will not dereference it again.
                if t != tid && claims.reservations.contains(&addr) {
                    failure = Some((
                        "premature-free/reservation".into(),
                        format!(
                            "record {addr:#x} freed while thread {t}'s NBR reservations \
                             still include its address"
                        ),
                    ));
                    break;
                }
                if !claims.eras.is_empty() {
                    let lo = *claims.eras.values().min().expect("non-empty");
                    let hi = *claims.eras.values().max().expect("non-empty");
                    // Interval overlap, exactly the era-hull sweep's test:
                    // the record survives iff `hi ≥ birth && lo ≤ retire`.
                    if hi >= birth && lo <= retire {
                        failure = Some((
                            "premature-free/era-hull".into(),
                            format!(
                                "record {addr:#x} (lifetime [{birth}, {retire}]) freed while \
                                 thread {t}'s announced era hull [{lo}, {hi}] overlaps it"
                            ),
                        ));
                        break;
                    }
                }
                if let Some(pin) = claims.pin {
                    if pin <= retire {
                        failure = Some((
                            "premature-free/pinned-epoch".into(),
                            format!(
                                "record {addr:#x} (retire era {retire}) freed while thread \
                                 {t} is pinned at epoch {pin} ≤ {retire}"
                            ),
                        ));
                        break;
                    }
                }
            }
            if let Some((rule, msg)) = failure {
                s.violate(&rule, msg, addr);
            }
            let b = s.blocks.get_mut(&addr).expect("checked above");
            b.state = Lifecycle::Freed;
            b.history.push(format!("reclaim by t{tid}"));
        });
    }

    /// An owner free outside the reclamation funnel: `dealloc_unpublished`
    /// (never-published record) or a data structure's `Drop` walking its
    /// still-linked nodes. No claims check — by contract no other thread
    /// ever saw (or can still reach) the record — but freeing a *retired*
    /// record this way means the limbo bag also owns it (double ownership).
    pub fn on_owner_free(addr: usize) {
        with_session(|s| {
            let tid = current_tid();
            s.note(format!("t{tid} owner-free {addr:#x}"));
            if let Some(b) = s.blocks.get_mut(&addr) {
                match b.state {
                    Lifecycle::Live => {
                        b.state = Lifecycle::Freed;
                        b.history.push(format!("owner-free by t{tid}"));
                    }
                    Lifecycle::Retired => s.violate(
                        "lifecycle/owner-free-of-retired",
                        format!(
                            "block {addr:#x} owner-freed while retired — the limbo bag \
                             still owns it and will free it again"
                        ),
                        addr,
                    ),
                    Lifecycle::Freed => s.violate(
                        "lifecycle/double-free",
                        format!("block {addr:#x} owner-freed twice"),
                        addr,
                    ),
                }
            }
        });
    }

    /// A guarded dereference (`Shared::deref` / `Shared::as_ref`). Freed
    /// blocks are the use-after-free the whole layer exists to catch; with
    /// the recycling pool compiled in, this read would otherwise return
    /// another record's bytes without any allocator-level fault.
    pub fn assert_live(addr: usize) {
        with_session(|s| {
            if let Some(b) = s.blocks.get(&addr) {
                if b.state == Lifecycle::Freed {
                    let tid = current_tid();
                    s.violate(
                        "use-after-free/deref",
                        format!("thread {tid} dereferenced freed block {addr:#x}"),
                        addr,
                    );
                }
            }
        });
    }

    // ------------------------------------------------------------------
    // Protection-claim hooks (one call per scheme announcement).
    // ------------------------------------------------------------------

    fn claims(s: &mut SessionData, tid: usize) -> &mut ThreadClaims {
        s.threads.entry(tid).or_default()
    }

    /// Thread `tid` announced (and, per the HP contract, validated) a
    /// hazard on `addr` in `slot`. `addr == 0` clears the slot.
    pub fn claim_addr(tid: usize, slot: usize, addr: usize) {
        with_session(|s| {
            let c = claims(s, tid);
            if addr == 0 {
                c.addrs.remove(&slot);
            } else {
                c.addrs.insert(slot, addr);
            }
            s.note(format!("t{tid} hazard[{slot}] = {addr:#x}"));
        });
    }

    /// Thread `tid` announced era `era` in `slot`. The thread's protected
    /// interval is the hull over all of its era slots.
    pub fn claim_era(tid: usize, slot: usize, era: u64) {
        with_session(|s| {
            claims(s, tid).eras.insert(slot, era);
            s.note(format!("t{tid} era[{slot}] = {era}"));
        });
    }

    /// Thread `tid` announced its NBR write-phase reservations (replacing
    /// any previous set).
    pub fn claim_reservations(tid: usize, addrs: &[usize]) {
        with_session(|s| {
            let c = claims(s, tid);
            c.reservations.clear();
            c.reservations
                .extend(addrs.iter().map(|&a| a & !crate::atomic::TAG_MASK));
            s.note(format!("t{tid} reserve {} records", addrs.len()));
        });
    }

    /// Thread `tid` dropped all address/era/reservation claims (op exit,
    /// `clear_protections`, deregistration). The epoch pin is separate —
    /// see [`unpin_epoch`].
    pub fn clear_claims(tid: usize) {
        with_session(|s| {
            let c = claims(s, tid);
            c.addrs.clear();
            c.eras.clear();
            c.reservations.clear();
            s.note(format!("t{tid} clear claims"));
        });
    }

    /// Thread `tid` entered an operation pinned at `epoch` (EBR/POP family:
    /// the epoch it announced, or reads under, at `begin_op`).
    pub fn pin_epoch(tid: usize, epoch: u64) {
        with_session(|s| {
            claims(s, tid).pin = Some(epoch);
            s.note(format!("t{tid} pin epoch {epoch}"));
        });
    }

    /// Thread `tid` left its operation (quiescent).
    pub fn unpin_epoch(tid: usize) {
        with_session(|s| {
            claims(s, tid).pin = None;
            s.note(format!("t{tid} unpin"));
        });
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn session(label: &str) -> Session {
            begin_session(SessionConfig {
                label: label.to_string(),
                birth_era_monotonic: true,
            })
        }

        #[test]
        fn lifecycle_and_claims_catch_premature_free() {
            let guard = session("unit");
            set_current_tid(Some(0));
            on_raw_alloc(0x1000);
            on_node_alloc(0x1000, 5);
            on_retire(0x1000, 5, 9);
            // Reader 1 protects the address.
            claim_addr(1, 0, 0x1000);
            let err = std::panic::catch_unwind(|| on_reclaim(0x1000))
                .expect_err("freeing a hazard-covered record must trip the oracle");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("premature-free/hazard"), "got: {msg}");
            let v = take_violation().expect("violation recorded");
            assert_eq!(v.rule, "premature-free/hazard");
            assert!(!v.block_history.is_empty());
            set_current_tid(None);
            drop(guard);
        }

        #[test]
        fn era_hull_rule_matches_interval_overlap() {
            let guard = session("unit");
            set_current_tid(Some(0));
            on_raw_alloc(0x2000);
            on_node_alloc(0x2000, 10);
            on_retire(0x2000, 10, 12);
            // Hull [9, 11] overlaps [10, 12] → violation.
            claim_era(1, 0, 9);
            claim_era(1, 1, 11);
            assert!(std::panic::catch_unwind(|| on_reclaim(0x2000)).is_err());
            assert_eq!(
                take_violation().expect("recorded").rule,
                "premature-free/era-hull"
            );
            set_current_tid(None);
            drop(guard);

            // Disjoint hull: free passes.
            let guard = session("unit2");
            set_current_tid(Some(0));
            on_raw_alloc(0x2000);
            on_node_alloc(0x2000, 10);
            on_retire(0x2000, 10, 12);
            claim_era(1, 0, 14);
            claim_era(1, 1, 15);
            on_reclaim(0x2000);
            assert!(take_violation().is_none());
            set_current_tid(None);
            drop(guard);
        }

        #[test]
        fn overlapping_incarnations_are_flagged() {
            let guard = session("unit");
            set_current_tid(Some(0));
            on_raw_alloc(0x3000);
            on_node_alloc(0x3000, 1);
            on_retire(0x3000, 1, 7);
            on_reclaim(0x3000);
            on_raw_alloc(0x3000); // re-issued
                                  // Stale stamp: birth 4 < previous retire 7.
            assert!(std::panic::catch_unwind(|| on_node_alloc(0x3000, 4)).is_err());
            assert_eq!(
                take_violation().expect("recorded").rule,
                "recycle/overlapping-incarnations"
            );
            set_current_tid(None);
            drop(guard);
        }

        #[test]
        fn deref_of_freed_block_is_use_after_free() {
            let guard = session("unit");
            set_current_tid(Some(0));
            on_raw_alloc(0x4000);
            on_node_alloc(0x4000, 0);
            assert_live(0x4000); // live: fine
            on_retire(0x4000, 0, 0);
            assert_live(0x4000); // retired-but-protected reads are legal
            on_reclaim(0x4000);
            assert!(std::panic::catch_unwind(|| assert_live(0x4000)).is_err());
            assert_eq!(
                take_violation().expect("recorded").rule,
                "use-after-free/deref"
            );
            set_current_tid(None);
            drop(guard);
        }

        #[test]
        fn pinned_epoch_blocks_frees_up_to_the_pin() {
            let guard = session("unit");
            set_current_tid(Some(0));
            on_raw_alloc(0x5000);
            on_node_alloc(0x5000, 3);
            on_retire(0x5000, 3, 6);
            pin_epoch(2, 6);
            assert!(std::panic::catch_unwind(|| on_reclaim(0x5000)).is_err());
            assert_eq!(
                take_violation().expect("recorded").rule,
                "premature-free/pinned-epoch"
            );
            drop(guard);

            let guard = session("unit2");
            set_current_tid(Some(0));
            on_raw_alloc(0x5000);
            on_node_alloc(0x5000, 3);
            on_retire(0x5000, 3, 6);
            pin_epoch(2, 7); // pinned *after* the retire: free is legal
            on_reclaim(0x5000);
            assert!(take_violation().is_none());
            set_current_tid(None);
            drop(guard);
        }
    }
}
