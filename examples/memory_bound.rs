//! Bounded garbage demonstration (the paper's experiment E2 in miniature).
//!
//! One thread is deliberately stalled *inside* a data-structure operation
//! while the others churn inserts and deletes on a DGT tree. Epoch-based
//! schemes (DEBRA) cannot reclaim anything while the stalled thread pins the
//! epoch; NBR+ neutralizes it and keeps the amount of unreclaimed memory
//! bounded by the limbo-bag watermarks.
//!
//! Run with:
//! ```text
//! cargo run -p nbr-bench --release --example memory_bound
//! ```

use smr_common::SmrConfig;
use smr_harness::families::DgtTreeFamily;
use smr_harness::{run_with, SmrKind, StopCondition, WorkloadMix, WorkloadSpec};
use std::time::Duration;

#[global_allocator]
static ALLOC: smr_harness::alloc_track::CountingAlloc = smr_harness::alloc_track::CountingAlloc;

fn main() {
    let threads = 2;
    let config = SmrConfig::default()
        .with_max_threads(threads + 4)
        .with_watermarks(1024, 256);
    let spec = WorkloadSpec::new(
        WorkloadMix::UPDATE_HEAVY,
        32_768,
        threads,
        StopCondition::Duration(Duration::from_millis(600)),
    )
    .with_stalled_thread(true);

    println!("DGT tree, 50i/50d, key range 32768, {threads} worker threads + 1 stalled thread\n");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "scheme", "Mops/s", "retired", "freed", "unreclaimed", "peak MiB"
    );
    for kind in [
        SmrKind::NbrPlus,
        SmrKind::Nbr,
        SmrKind::Hp,
        SmrKind::Ibr,
        SmrKind::Debra,
        SmrKind::Rcu,
        SmrKind::Qsbr,
    ] {
        let r = run_with::<DgtTreeFamily>(kind, &spec, config.clone());
        println!(
            "{:<8} {:>10.3} {:>12} {:>12} {:>14} {:>12.2}",
            r.smr,
            r.mops,
            r.smr_totals.retires,
            r.smr_totals.frees,
            r.outstanding_garbage(),
            r.peak_mem_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    println!("\nExpected shape (paper Fig. 4c): the bounded schemes (NBR+, NBR, HP, IBR) keep");
    println!("`unreclaimed` near their watermarks; DEBRA/RCU/QSBR accumulate garbage for the");
    println!("whole run because the stalled thread pins their epoch.");
}
