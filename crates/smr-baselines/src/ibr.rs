//! Interval-based reclamation — the 2GEIBR variant (Wen et al., PPoPP 2018),
//! the IBR configuration the paper benchmarks against ("2geibr").
//!
//! Every record carries its *birth era* (stamped at allocation) and is tagged
//! with its *retire era* when unlinked. Each thread announces an era interval
//! `[lower, upper]`: `lower` is fixed when the operation begins, `upper` is
//! bumped to the current global era on every pointer access (that is the
//! per-access overhead the paper measures). A retired record can be freed once
//! its lifetime interval `[birth, retire]` is disjoint from every announced
//! interval — so garbage is bounded, but unlike hazard pointers no per-record
//! validation is needed.

use crate::util::{EraClock, OrphanPool};
use smr_common::telemetry::{self, trace, TraceKind};
use smr_common::{
    Atomic, BlockPool, CachePadded, LimboBag, Magazine, Registry, Retired, ScanPolicy, ScanState,
    Shared, Smr, SmrConfig, SmrNode, ThreadStats,
};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// Announcement meaning "not inside an operation".
const IDLE: u64 = u64::MAX;

struct IntervalSlot {
    lower: AtomicU64,
    upper: AtomicU64,
}

/// Per-thread context for [`Ibr`].
pub struct IbrCtx {
    tid: usize,
    limbo: LimboBag,
    scan: ScanState,
    /// Reusable scratch: announced interval lower/upper bounds, each sorted.
    lowers: Vec<u64>,
    uppers: Vec<u64>,
    allocs_since_advance: usize,
    retires_since_scan: usize,
    mag: Magazine,
    stats: ThreadStats,
}

/// The 2GEIBR interval-based reclaimer.
pub struct Ibr {
    config: SmrConfig,
    policy: ScanPolicy,
    registry: Registry,
    era: EraClock,
    slots: Vec<CachePadded<IntervalSlot>>,
    pool: Arc<BlockPool>,
    orphans: OrphanPool,
    /// Test-only resurrection of the pre-fix **stamp-before-pop** allocation:
    /// the birth era is read from the clock *before* the magazine pop instead
    /// of after it. The era read then races the previous incarnation's free —
    /// a stale stamp dates the new incarnation's lifetime to overlap the old
    /// one, breaking the incarnation-disjointness contract `recycle_aba.rs`
    /// pins (the intervals of two occupants of one address must never
    /// overlap). Only settable under the `check` feature.
    #[cfg(feature = "check")]
    resurrect_stamp_before_pop: std::sync::atomic::AtomicBool,
}

impl Ibr {
    fn scan_and_reclaim(&self, ctx: &mut IbrCtx) {
        let sw = telemetry::stopwatch_if(self.config.telemetry);
        trace::emit(ctx.tid, TraceKind::ScanBegin, ctx.limbo.len() as u64, 0);
        // Survivor adoption: fold departed threads' orphaned records into
        // this thread's limbo bag so they flow through the ordinary
        // protection-checked sweep below (`take_all` is non-blocking).
        let orphaned = self.orphans.take_all();
        if !orphaned.is_empty() {
            ctx.stats.orphan_adoptions += orphaned.len() as u64;
            trace::emit(ctx.tid, TraceKind::OrphanAdopt, orphaned.len() as u64, 0);
        }
        for r in orphaned {
            ctx.limbo.push(r);
        }
        ctx.stats.reclaim_scans += 1;
        ctx.scan.note_scan();
        // Single-fence scan (see DESIGN.md): one SeqCst fence, then Acquire
        // loads of every announced interval.
        fence(Ordering::SeqCst);
        ctx.lowers.clear();
        ctx.uppers.clear();
        for tid in self.registry.active_tids() {
            let lo = self.slots[tid].lower.load(Ordering::Acquire);
            let up = self.slots[tid].upper.load(Ordering::Acquire);
            if lo != IDLE {
                // The two loads are not a single atomic snapshot: a
                // concurrent end_op/begin_op can leave us a torn pair with
                // up < lo. Clamp to [lo, max(lo, up)] — conservative (pins at
                // least era `lo`) and restores the lo ≤ up invariant the
                // sorted sweep's counting argument relies on.
                ctx.lowers.push(lo);
                ctx.uppers.push(up.max(lo));
            }
        }
        // Sort-then-sweep: with both bound arrays sorted, each record is
        // tested with two binary searches — |lo ≤ retire| == |up < birth| ⇔
        // no announced interval overlaps [birth, retire] — taking the scan
        // from O(R × T) to O((R + T) log T).
        ctx.lowers.sort_unstable();
        ctx.uppers.sort_unstable();
        let before = ctx.limbo.len();
        // SAFETY: a record whose [birth, retire] interval is disjoint from
        // every announced [lower, upper] interval cannot be reached by any
        // in-flight operation: an operation can only hold pointers to records
        // that were live at some era inside its announced interval (Wen et
        // al.'s reachability argument; single-fence variant argued in
        // DESIGN.md).
        let freed = unsafe {
            ctx.limbo.reclaim_disjoint_intervals(
                &ctx.lowers,
                &ctx.uppers,
                &mut ctx.stats,
                &mut ctx.mag,
            )
        };
        if freed == 0 && before > 0 {
            ctx.stats.reclaim_skips += 1;
        }
        trace::emit(ctx.tid, TraceKind::ScanEnd, freed as u64, 0);
        if let Some(sw) = sw {
            ctx.stats.tel.scan.record(sw.elapsed_ns());
        }
    }

    /// Restores the pre-fix stamp-before-pop allocation (see the field docs).
    /// Test-only: the smr-check resurrect suite flips this to prove the
    /// checker finds the historical recycled-incarnation bug.
    #[cfg(feature = "check")]
    pub fn resurrect_stamp_before_pop(&self) {
        self.resurrect_stamp_before_pop
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

impl Smr for Ibr {
    type ThreadCtx = IbrCtx;

    const NAME: &'static str = "IBR";
    const USES_PROTECTION: bool = true;
    // The IBR paper's claim, now proven for this port: the announced interval
    // is *contiguous* — `lower` fixed at `begin_op`, `upper` re-validated to
    // cover every load — so a record reached through a marked-frozen pointer
    // out of an unlinked record (whose lifetime sits between two of the
    // traversal's access eras) is still pinned by the interval in between.
    // The residual race that originally parked this flag at `false`
    // root-caused to hazard eras' *point*-era sweep, not to interval
    // protection: `tests/tests/marked_chain_race.rs` runs the exact
    // interleaving under IBR and the chain stays pinned. Full argument in
    // DESIGN.md, "Traversals through unlinked records under the interval
    // reclaimers".
    const CAN_TRAVERSE_UNLINKED: bool = true;

    fn new(config: SmrConfig) -> Self {
        config.validate();
        let slots = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(IntervalSlot {
                    lower: AtomicU64::new(IDLE),
                    upper: AtomicU64::new(IDLE),
                })
            })
            .collect();
        Self {
            registry: Registry::new(config.max_threads),
            policy: ScanPolicy::from_config(&config),
            era: EraClock::new(),
            slots,
            pool: BlockPool::from_config(&config),
            orphans: OrphanPool::new(),
            config,
            #[cfg(feature = "check")]
            resurrect_stamp_before_pop: std::sync::atomic::AtomicBool::new(false),
        }
    }

    fn config(&self) -> &SmrConfig {
        &self.config
    }

    fn register(&self, tid: usize) -> IbrCtx {
        assert!(self.registry.register_tid(tid), "slot {tid} already taken");
        self.slots[tid].lower.store(IDLE, Ordering::SeqCst);
        self.slots[tid].upper.store(IDLE, Ordering::SeqCst);
        IbrCtx {
            tid,
            limbo: LimboBag::with_batch(self.config.retire_batch_cap()),
            scan: ScanState::new(),
            lowers: Vec::with_capacity(self.config.max_threads),
            uppers: Vec::with_capacity(self.config.max_threads),
            allocs_since_advance: 0,
            retires_since_scan: 0,
            mag: Magazine::from_config(&self.pool, &self.config),
            stats: ThreadStats::default(),
        }
    }

    fn unregister(&self, ctx: &mut IbrCtx) {
        smr_common::check::clear_claims(ctx.tid);
        self.slots[ctx.tid].lower.store(IDLE, Ordering::SeqCst);
        self.slots[ctx.tid].upper.store(IDLE, Ordering::SeqCst);
        self.scan_and_reclaim(ctx);
        self.orphans.adopt(ctx.limbo.drain());
        ctx.mag.flush();
        self.registry.deregister(ctx.tid);
    }

    #[inline]
    fn magazine_mut<'a>(&self, ctx: &'a mut IbrCtx) -> Option<&'a mut Magazine> {
        Some(&mut ctx.mag)
    }

    #[inline]
    fn begin_op(&self, ctx: &mut IbrCtx) {
        let e = self.era.now();
        self.slots[ctx.tid].lower.store(e, Ordering::SeqCst);
        self.slots[ctx.tid].upper.store(e, Ordering::SeqCst);
        // Mirror the interval as two era claims (pseudo-slot 0 = lower,
        // 1 = upper); the oracle's hull over them is exactly [lower, upper].
        smr_common::check::claim_era(ctx.tid, 0, e);
        smr_common::check::claim_era(ctx.tid, 1, e);
    }

    #[inline]
    fn end_op(&self, ctx: &mut IbrCtx) {
        // Claims drop first (they must stay a subset of the announcement).
        smr_common::check::clear_claims(ctx.tid);
        // Withdrawing an announcement only *permits* more reclamation, so a
        // delayed-visibility (Release) store is safe: a scan that still sees
        // the old interval merely pins a few records longer. The next
        // operation re-announces with SeqCst before its first shared read.
        self.slots[ctx.tid].lower.store(IDLE, Ordering::Release);
        self.slots[ctx.tid].upper.store(IDLE, Ordering::Release);
        if ctx.scan.tick_op(&self.policy, ctx.limbo.len()) {
            ctx.stats.heartbeat_scans += 1;
            self.scan_and_reclaim(ctx);
        }
    }

    #[inline]
    fn global_era(&self) -> u64 {
        self.era.now()
    }

    /// The per-access hook (2GEIBR's guarded read): load the pointer and make
    /// sure the announced upper bound covers the era at which the load
    /// happened, retrying otherwise. Without the re-validation a record that
    /// was born *after* the announced upper (the era advanced between the
    /// previous refresh and this load) and retired immediately could be freed
    /// while this thread still dereferences it.
    #[inline]
    fn protect<T: SmrNode>(&self, ctx: &mut IbrCtx, _slot: usize, src: &Atomic<T>) -> Shared<T> {
        let upper = &self.slots[ctx.tid].upper;
        let mut announced = upper.load(Ordering::Relaxed);
        loop {
            let p = src.load(Ordering::Acquire);
            let e = self.era.now();
            if announced != IDLE && e <= announced {
                smr_common::check::claim_era(ctx.tid, 1, announced);
                return p;
            }
            upper.store(e, Ordering::SeqCst);
            // Mirror the grown interval immediately (scheduler-atomic with
            // the store above): the claim hull must track the real
            // announcement or later loop iterations under-claim the records
            // this thread is about to dereference.
            smr_common::check::claim_era(ctx.tid, 1, e);
            announced = e;
            ctx.stats.protect_failures += 1;
        }
    }

    fn alloc<T: SmrNode>(&self, ctx: &mut IbrCtx, value: T) -> Shared<T> {
        #[cfg(feature = "check")]
        if self
            .resurrect_stamp_before_pop
            .load(std::sync::atomic::Ordering::SeqCst)
        {
            // Resurrected pre-fix shape: the clock is read *before* the pop.
            // Between the read and the pop another thread can retire + free
            // the block this pop will return at an era `r > e`; stamping `e`
            // then backdates the new incarnation into the old one's lifetime.
            // The preempt point is the window the explorer widens.
            let e = self.era.now();
            smr_common::check::preempt("ibr.alloc.stale-stamp", 0);
            let mut value = value;
            value.header_mut().set_birth_era(e);
            let raw = ctx.mag.alloc_node(value);
            smr_common::check::on_node_alloc(raw as usize, e);
            // Keep the normal era-advance cadence: the historical bug was
            // the stamp-before-pop ordering, not a frozen clock (without
            // this the era never moves and no retire can postdate `e`).
            ctx.allocs_since_advance += 1;
            if ctx.allocs_since_advance >= self.config.epoch_freq {
                ctx.allocs_since_advance = 0;
                let era = self.era.advance();
                trace::emit(ctx.tid, TraceKind::EraAdvance, era, 0);
                ctx.stats.epoch_advances += 1;
            }
            ctx.stats.allocs += 1;
            return Shared::from_raw(raw);
        }
        let raw = ctx.mag.alloc_node(value);
        // Stamp after the pop (which happens-after the block's free), so a
        // recycled block's new birth era is never older than the era at
        // which its previous incarnation was freed (`Smr::alloc` docs).
        // SAFETY: freshly allocated above, not yet published.
        unsafe { (*raw).header_mut().set_birth_era(self.era.now()) };
        // SAFETY: same exclusive ownership as the line above.
        smr_common::check::on_node_alloc(raw as usize, unsafe { (*raw).header().birth_era() });
        ctx.allocs_since_advance += 1;
        if ctx.allocs_since_advance >= self.config.epoch_freq {
            ctx.allocs_since_advance = 0;
            let era = self.era.advance();
            trace::emit(ctx.tid, TraceKind::EraAdvance, era, 0);
            ctx.stats.epoch_advances += 1;
        }
        ctx.stats.allocs += 1;
        Shared::from_raw(raw)
    }

    unsafe fn retire<T: SmrNode>(&self, ctx: &mut IbrCtx, ptr: Shared<T>) {
        debug_assert!(!ptr.is_null());
        let era = self.era.now();
        // Retire coalescing: stage the record (era-stamped before staging).
        // The `empty_freq` scan cadence stays per-retire; the watermark
        // trigger is consulted only when a batch flushes (bounded overshoot
        // of RETIRE_BATCH_CAP - 1).
        let flushed = ctx.limbo.stage(Retired::new(ptr.as_raw(), era));
        ctx.stats.retires += 1;
        if flushed {
            ctx.stats.observe_limbo(ctx.limbo.len());
        }
        ctx.retires_since_scan += 1;
        if ctx.retires_since_scan >= self.config.empty_freq
            || (flushed && self.policy.scan_on_retire(ctx.limbo.len()))
        {
            if self.policy.scan_on_retire(ctx.limbo.len()) {
                trace::emit(
                    ctx.tid,
                    TraceKind::LimboHigh,
                    ctx.limbo.len() as u64,
                    self.config.hi_watermark as u64,
                );
            }
            ctx.retires_since_scan = 0;
            self.scan_and_reclaim(ctx);
        }
    }

    fn flush(&self, ctx: &mut IbrCtx) {
        self.era.advance();
        self.scan_and_reclaim(ctx);
    }

    fn thread_stats(&self, ctx: &IbrCtx) -> ThreadStats {
        ctx.mag.fold_stats(ctx.stats)
    }

    fn thread_stats_mut<'a>(&self, ctx: &'a mut IbrCtx) -> &'a mut ThreadStats {
        &mut ctx.stats
    }

    fn limbo_len(&self, ctx: &IbrCtx) -> usize {
        ctx.limbo.len()
    }
}

impl Drop for Ibr {
    fn drop(&mut self) {
        // SAFETY: all threads have deregistered by contract.
        unsafe { self.orphans.drain_and_free() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_common::NodeHeader;

    struct Node {
        header: NodeHeader,
        #[allow(dead_code)]
        key: u64,
    }
    smr_common::impl_smr_node!(Node);

    fn op_with_retire(smr: &Ibr, ctx: &mut IbrCtx, key: u64) {
        smr.begin_op(ctx);
        let p = smr.alloc(
            ctx,
            Node {
                header: NodeHeader::new(),
                key,
            },
        );
        unsafe { smr.retire(ctx, p) };
        smr.end_op(ctx);
    }

    #[test]
    fn reclaims_outside_announced_intervals() {
        let smr = Ibr::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        for i in 0..200 {
            op_with_retire(&smr, &mut ctx, i);
        }
        smr.flush(&mut ctx);
        assert!(smr.thread_stats(&ctx).frees > 0);
        smr.unregister(&mut ctx);
    }

    #[test]
    fn old_interval_pins_only_overlapping_records() {
        let smr = Ibr::new(SmrConfig::for_tests());
        let mut worker = smr.register(0);
        let mut reader = smr.register(1);

        // Reader opens an operation at the current (early) era and stalls
        // there without refreshing its upper bound.
        smr.begin_op(&mut reader);

        // Worker churns: records born later and retired later have intervals
        // entirely above the reader's, so they can still be freed — the key
        // difference from RCU/EBR (bounded garbage under a stalled reader).
        for i in 0..500 {
            op_with_retire(&smr, &mut worker, i);
        }
        smr.flush(&mut worker);
        let s = smr.thread_stats(&worker);
        assert!(
            s.frees > 0,
            "records born after the stalled reader's interval must still be freed"
        );

        smr.end_op(&mut reader);
        smr.unregister(&mut reader);
        smr.unregister(&mut worker);
    }

    #[test]
    fn protect_refreshes_upper_bound() {
        let smr = Ibr::new(SmrConfig::for_tests().with_epoch_freqs(1, 8));
        let mut ctx = smr.register(0);
        smr.begin_op(&mut ctx);
        let lower_before = smr.slots[0].lower.load(Ordering::SeqCst);
        // Advance the era by allocating (epoch_freq = 1 → every alloc advances).
        let shared = Atomic::<Node>::null();
        let n = smr.alloc(
            &mut ctx,
            Node {
                header: NodeHeader::new(),
                key: 0,
            },
        );
        shared.store(n, Ordering::Release);
        let _ = smr.protect(&mut ctx, 0, &shared);
        let upper = smr.slots[0].upper.load(Ordering::SeqCst);
        assert!(
            upper > lower_before,
            "upper bound must track the global era"
        );
        assert_eq!(smr.slots[0].lower.load(Ordering::SeqCst), lower_before);
        smr.end_op(&mut ctx);
        let old = shared.swap(Shared::null(), Ordering::AcqRel);
        unsafe { smr.retire(&mut ctx, old) };
        smr.unregister(&mut ctx);
    }

    #[test]
    fn birth_era_is_stamped_on_alloc() {
        let smr = Ibr::new(SmrConfig::for_tests());
        let mut ctx = smr.register(0);
        let before = smr.global_era();
        let p = smr.alloc(
            &mut ctx,
            Node {
                header: NodeHeader::new(),
                key: 1,
            },
        );
        assert!(unsafe { p.deref().header().birth_era() } >= before);
        unsafe { smr.retire(&mut ctx, p) };
        smr.unregister(&mut ctx);
    }
}
