//! The bounded-garbage property (Lemma 10 / experiment E2) across crates:
//! NBR, NBR+, HP and IBR must keep unreclaimed records bounded even with a
//! thread stalled inside an operation, while DEBRA/RCU must not.

use smr_common::SmrConfig;
use smr_harness::families::{DgtTreeFamily, LazyListFamily};
use smr_harness::{run_with, SmrKind, StopCondition, WorkloadMix, WorkloadSpec};

fn cfg() -> SmrConfig {
    SmrConfig::default()
        .with_max_threads(16)
        .with_watermarks(256, 64)
}

fn stalled_spec(key_range: u64, ops: u64) -> WorkloadSpec {
    WorkloadSpec::new(
        WorkloadMix::UPDATE_HEAVY,
        key_range,
        2,
        StopCondition::TotalOps(ops),
    )
    .with_stalled_thread(true)
}

/// Per-thread bound from Lemma 10, times the number of participating threads,
/// with headroom for records retired after the last reclamation scan.
fn bound(config: &SmrConfig, threads: u64) -> u64 {
    (config.hi_watermark as u64
        + (config.max_reservations * config.max_threads) as u64
        + config.hazards_per_thread as u64 * config.max_threads as u64)
        * (threads + 1)
}

#[test]
fn nbr_plus_bounds_garbage_with_stalled_thread() {
    let config = cfg();
    let r = run_with::<DgtTreeFamily>(
        SmrKind::NbrPlus,
        &stalled_spec(4_096, 60_000),
        config.clone(),
    );
    assert!(
        r.outstanding_garbage() <= bound(&config, 3),
        "NBR+ outstanding garbage {} exceeds the bound {}",
        r.outstanding_garbage(),
        bound(&config, 3)
    );
    assert!(
        r.smr_totals.frees > 0,
        "NBR+ must have reclaimed during the run"
    );
}

#[test]
fn nbr_bounds_garbage_with_stalled_thread() {
    let config = cfg();
    let r = run_with::<DgtTreeFamily>(SmrKind::Nbr, &stalled_spec(4_096, 60_000), config.clone());
    assert!(r.outstanding_garbage() <= bound(&config, 3));
}

#[test]
fn hazard_pointers_bound_garbage_with_stalled_thread() {
    let config = cfg();
    let r = run_with::<DgtTreeFamily>(SmrKind::Hp, &stalled_spec(4_096, 60_000), config.clone());
    assert!(r.outstanding_garbage() <= bound(&config, 3));
}

#[test]
fn ibr_bounds_garbage_with_stalled_thread() {
    // An interval-based reclaimer's stalled-reader bound differs from HP/NBR:
    // the stalled thread announces the era interval [e, e] and pins every
    // record whose lifetime overlaps it — i.e. up to the whole live set at the
    // stall point (the DGT external tree holds ~2 nodes per key: leaf plus
    // internal router), on top of the per-thread Lemma-10 slack. The bound is
    // therefore larger than HP/NBR's, but still *fixed*: it must not grow with
    // trial length, which is what separates IBR from DEBRA/RCU.
    let config = cfg();
    let key_range = 4_096u64;
    let live_at_stall = 2 * (key_range / 2); // prefill = key_range / 2
    let ibr_bound = bound(&config, 3) + live_at_stall;
    let short = run_with::<DgtTreeFamily>(
        SmrKind::Ibr,
        &stalled_spec(key_range, 60_000),
        config.clone(),
    );
    let long = run_with::<DgtTreeFamily>(
        SmrKind::Ibr,
        &stalled_spec(key_range, 180_000),
        config.clone(),
    );
    assert!(
        short.outstanding_garbage() <= ibr_bound,
        "IBR outstanding garbage {} exceeds the interval bound {}",
        short.outstanding_garbage(),
        ibr_bound
    );
    assert!(
        long.outstanding_garbage() <= ibr_bound,
        "IBR garbage must not grow with trial length: {} after 3x the ops, bound {}",
        long.outstanding_garbage(),
        ibr_bound
    );
}

#[test]
fn wfe_bounds_garbage_with_stalled_thread() {
    // WFE is the tree's first *robust* reclaimer: like IBR/HE its stalled
    // reader pins at most the records whose lifetime overlaps its announced
    // era hull — bounded by the live set at the stall point — and unlike the
    // epoch family the bound is constant in trial length. Two trial lengths
    // prove the constancy.
    let config = cfg();
    let key_range = 4_096u64;
    let live_at_stall = 2 * (key_range / 2); // prefill = key_range / 2
    let wfe_bound = bound(&config, 3) + live_at_stall;
    let short = run_with::<DgtTreeFamily>(
        SmrKind::Wfe,
        &stalled_spec(key_range, 60_000),
        config.clone(),
    );
    let long = run_with::<DgtTreeFamily>(
        SmrKind::Wfe,
        &stalled_spec(key_range, 180_000),
        config.clone(),
    );
    assert!(
        short.outstanding_garbage() <= wfe_bound,
        "WFE outstanding garbage {} exceeds the robust bound {}",
        short.outstanding_garbage(),
        wfe_bound
    );
    assert!(
        long.outstanding_garbage() <= wfe_bound,
        "WFE garbage must not grow with trial length: {} after 3x the ops, bound {}",
        long.outstanding_garbage(),
        wfe_bound
    );
    assert!(
        short.smr_totals.frees > 0,
        "WFE must have reclaimed during the run"
    );
}

#[test]
fn wfe_bounded_while_epoch_family_grows_under_injected_permanent_stall() {
    // The ISSUE-7 robustness assertion, via the fault adversary instead of
    // the E2 stalled extra thread: one worker stalls *permanently* inside an
    // open operation (still acking pings). WFE's garbage stays under the
    // fixed robust bound; DEBRA's and QSBR's provably grows past it, because
    // the victim pins the epoch from the stall point onward.
    use smr_harness::{FaultKind, FaultPlan};
    let config = cfg();
    let key_range = 4_096u64;
    let mk_spec = || {
        WorkloadSpec::new(
            WorkloadMix::UPDATE_HEAVY,
            key_range,
            3,
            StopCondition::TotalOps(60_000),
        )
        .with_fault_plan(FaultPlan::single(
            0,
            256,
            FaultKind::Stall { for_ops: u64::MAX },
        ))
    };
    let live_at_stall = 2 * (key_range / 2);
    let robust_bound = bound(&config, 4) + live_at_stall;

    let wfe = run_with::<DgtTreeFamily>(SmrKind::Wfe, &mk_spec(), config.clone());
    assert_eq!(wfe.injected_faults, 1);
    assert!(
        wfe.outstanding_garbage() <= robust_bound,
        "WFE outstanding garbage {} exceeds the robust bound {} under a permanent stall",
        wfe.outstanding_garbage(),
        robust_bound
    );
    assert!(wfe.smr_totals.frees > 0);

    for kind in [SmrKind::Debra, SmrKind::Qsbr] {
        let r = run_with::<DgtTreeFamily>(kind, &mk_spec(), config.clone());
        assert!(
            r.outstanding_garbage() > robust_bound,
            "{} should accumulate garbage ({}) past the robust bound ({}) under the same stall",
            kind.label(),
            r.outstanding_garbage(),
            robust_bound
        );
        assert!(
            r.outstanding_garbage() > wfe.outstanding_garbage(),
            "{} ({}) must hold more garbage than WFE ({})",
            kind.label(),
            r.outstanding_garbage(),
            wfe.outstanding_garbage()
        );
    }
}

#[test]
fn hp_pop_bounds_garbage_with_stalled_thread() {
    // HP-POP's private-until-pinged reservations still yield HP's bound: the
    // stalled reader publishes at most `hazards_per_thread` addresses on each
    // ping (its read phase holds no protections in the E2 scenario), so the
    // handshake completes and the sweep frees everything unreserved. The
    // bound() slack already covers K published slots per thread.
    let config = cfg();
    let r = run_with::<DgtTreeFamily>(SmrKind::HpPop, &stalled_spec(4_096, 60_000), config.clone());
    assert!(
        r.outstanding_garbage() <= bound(&config, 3),
        "HP-POP outstanding garbage {} exceeds the bound {}",
        r.outstanding_garbage(),
        bound(&config, 3)
    );
    assert!(
        r.smr_totals.frees > 0,
        "HP-POP must have reclaimed during the run"
    );
    assert!(
        r.smr_totals.pings_published > 0,
        "reclamation must have gone through publish-on-ping handshakes"
    );
}

#[test]
fn epoch_pop_does_not_bound_garbage_with_stalled_thread() {
    // EpochPOP keeps the epoch family's delayed-thread vulnerability: the
    // stalled reader answers every ping by publishing its (old) begin-op era,
    // which pins everything retired since — private-until-pinged reservations
    // change where the announcement lives, not what it pins.
    let config = cfg();
    let r = run_with::<DgtTreeFamily>(
        SmrKind::EpochPop,
        &stalled_spec(4_096, 60_000),
        config.clone(),
    );
    assert!(
        r.outstanding_garbage() > bound(&config, 3),
        "EpochPOP should accumulate garbage ({}) beyond the bounded-scheme bound ({}) when a thread stalls",
        r.outstanding_garbage(),
        bound(&config, 3)
    );
}

#[test]
fn debra_does_not_bound_garbage_with_stalled_thread() {
    let config = cfg();
    let r = run_with::<DgtTreeFamily>(SmrKind::Debra, &stalled_spec(4_096, 60_000), config.clone());
    assert!(
        r.outstanding_garbage() > bound(&config, 3),
        "DEBRA should accumulate garbage ({}) beyond the bounded-scheme bound ({}) when a thread stalls",
        r.outstanding_garbage(),
        bound(&config, 3)
    );
}

#[test]
fn rcu_does_not_bound_garbage_with_stalled_thread() {
    let config = cfg();
    let r = run_with::<DgtTreeFamily>(SmrKind::Rcu, &stalled_spec(4_096, 60_000), config.clone());
    assert!(r.outstanding_garbage() > bound(&config, 3));
}

#[test]
fn without_stalled_thread_everyone_reclaims() {
    let config = cfg();
    for kind in [
        SmrKind::NbrPlus,
        SmrKind::Debra,
        SmrKind::Hp,
        SmrKind::Ibr,
        SmrKind::Rcu,
        SmrKind::EpochPop,
        SmrKind::HpPop,
    ] {
        let spec = WorkloadSpec::new(
            WorkloadMix::UPDATE_HEAVY,
            4_096,
            2,
            StopCondition::TotalOps(60_000),
        );
        let r = run_with::<LazyListFamily>(kind, &spec, config.clone());
        assert!(
            r.smr_totals.frees > 0,
            "{} must reclaim — freed nothing out of {} retires",
            kind.label(),
            r.smr_totals.retires
        );
    }
}

#[test]
fn adaptive_trigger_preserves_bounds_for_bounded_schemes() {
    // The operation-exit heartbeat only *adds* scans — it must never weaken
    // the Lemma 10-style bounds. Run the bounded schemes with an aggressive
    // heartbeat (a scan every 64 ops) under the stalled-thread workload and
    // assert the same bounds as the fixed-watermark tests above.
    let config = cfg().with_scan_heartbeat_ops(64);
    for kind in [SmrKind::NbrPlus, SmrKind::Nbr, SmrKind::Hp, SmrKind::HpPop] {
        let r = run_with::<DgtTreeFamily>(kind, &stalled_spec(4_096, 60_000), config.clone());
        assert!(
            r.outstanding_garbage() <= bound(&config, 3),
            "{} with heartbeat: outstanding garbage {} exceeds the bound {}",
            kind.label(),
            r.outstanding_garbage(),
            bound(&config, 3)
        );
        assert!(
            r.smr_totals.frees > 0,
            "{} with heartbeat must still reclaim",
            kind.label()
        );
    }
    // IBR's stalled-reader bound includes the live set pinned at the stall
    // point (see ibr_bounds_garbage_with_stalled_thread).
    let live_at_stall = 2 * (4_096 / 2);
    let r = run_with::<DgtTreeFamily>(SmrKind::Ibr, &stalled_spec(4_096, 60_000), config.clone());
    assert!(
        r.outstanding_garbage() <= bound(&config, 3) + live_at_stall,
        "IBR with heartbeat: outstanding garbage {} exceeds the interval bound {}",
        r.outstanding_garbage(),
        bound(&config, 3) + live_at_stall
    );
}

#[test]
fn coalescing_adds_exactly_the_batch_slack_to_robust_bounds() {
    // ISSUE-9: with retire coalescing ON, each thread's watermark trigger is
    // only evaluated at batch flushes, so a bag can overshoot the HiWatermark
    // by at most the records still sitting in the staging buffer — a *fixed*
    // slack of RETIRE_BATCH_CAP − 1 per participating thread, zero when
    // coalescing is off. The robust schemes (HP, WFE) must hold their
    // stalled-reader bounds at exactly that widened figure in both modes.
    use smr_common::RETIRE_BATCH_CAP;
    for coalesce in [false, true] {
        let config = cfg().with_coalesce(coalesce);
        let slack = if coalesce {
            (RETIRE_BATCH_CAP as u64 - 1) * 4 // threads + 1 participants
        } else {
            0
        };
        let hp =
            run_with::<DgtTreeFamily>(SmrKind::Hp, &stalled_spec(4_096, 60_000), config.clone());
        assert!(
            hp.outstanding_garbage() <= bound(&config, 3) + slack,
            "HP (coalesce={coalesce}): outstanding {} exceeds bound {} + batch slack {}",
            hp.outstanding_garbage(),
            bound(&config, 3),
            slack
        );
        assert!(hp.smr_totals.frees > 0);

        let live_at_stall = 2 * (4_096 / 2);
        let wfe =
            run_with::<DgtTreeFamily>(SmrKind::Wfe, &stalled_spec(4_096, 60_000), config.clone());
        assert!(
            wfe.outstanding_garbage() <= bound(&config, 3) + live_at_stall + slack,
            "WFE (coalesce={coalesce}): outstanding {} exceeds robust bound {} + batch slack {}",
            wfe.outstanding_garbage(),
            bound(&config, 3) + live_at_stall,
            slack
        );
        assert!(wfe.smr_totals.frees > 0);
    }
}

#[test]
fn wfe_robust_bound_holds_with_coalescing_under_permanent_stall() {
    // The ISSUE-9 acceptance row: coalescing + combining explicitly on, one
    // worker permanently stalled inside an open operation, and WFE's garbage
    // still under the fixed robust bound widened by the batch slack only.
    use smr_common::RETIRE_BATCH_CAP;
    use smr_harness::{FaultKind, FaultPlan};
    let config = cfg().with_coalesce(true).with_combine(true);
    let key_range = 4_096u64;
    let spec = WorkloadSpec::new(
        WorkloadMix::UPDATE_HEAVY,
        key_range,
        3,
        StopCondition::TotalOps(60_000),
    )
    .with_fault_plan(FaultPlan::single(
        0,
        256,
        FaultKind::Stall { for_ops: u64::MAX },
    ));
    let live_at_stall = 2 * (key_range / 2);
    let slack = (RETIRE_BATCH_CAP as u64 - 1) * 5; // threads + 1 participants
    let robust_bound = bound(&config, 4) + live_at_stall + slack;
    let r = run_with::<DgtTreeFamily>(SmrKind::Wfe, &spec, config);
    assert_eq!(r.injected_faults, 1);
    assert!(
        r.outstanding_garbage() <= robust_bound,
        "WFE with coalescing+combining: outstanding {} exceeds the robust bound {} under a permanent stall",
        r.outstanding_garbage(),
        robust_bound
    );
    assert!(r.smr_totals.frees > 0);
}

#[test]
fn nbr_plus_piggybacks_instead_of_signalling() {
    // System-level version of the Section 5 claim: for the same workload NBR+
    // must send fewer signals than NBR while reclaiming a comparable amount.
    let config = cfg();
    let spec = WorkloadSpec::new(
        WorkloadMix::UPDATE_HEAVY,
        4_096,
        4,
        StopCondition::TotalOps(120_000),
    );
    let nbr = run_with::<DgtTreeFamily>(SmrKind::Nbr, &spec, config.clone());
    let plus = run_with::<DgtTreeFamily>(SmrKind::NbrPlus, &spec, config.clone());
    assert!(nbr.smr_totals.frees > 0 && plus.smr_totals.frees > 0);
    let nbr_rate = nbr.smr_totals.signals_sent as f64 / nbr.smr_totals.frees.max(1) as f64;
    let plus_rate = plus.smr_totals.signals_sent as f64 / plus.smr_totals.frees.max(1) as f64;
    assert!(
        plus_rate < nbr_rate,
        "NBR+ signals-per-free ({plus_rate:.4}) must be below NBR's ({nbr_rate:.4})"
    );
}
