//! Resurrect-the-bug validation: flip the test-only flags that restore two
//! historical soundness bugs and assert the explorer + oracle rediscover
//! both within a bounded schedule budget, printing the replayable seed.
//!
//! * **HE point-era sweep** (pre-PR-5): each announced era treated as a
//!   degenerate `[e, e]` interval instead of the per-thread hull. A record
//!   born and retired strictly *between* two eras a traverser announced is
//!   covered by neither point and gets freed while the traverser can still
//!   reach it through a marked-frozen pointer (the marked-chain race).
//!   Expected oracle verdict: `premature-free/era-hull` (the claim hull
//!   overlaps the lifetime the point sweep ignored) or, if the schedule
//!   lets the traverser touch the block first, `use-after-free/deref`.
//!
//! * **IBR stamp-before-pop** (recycle ABA): the allocation reads the era
//!   clock *before* popping a block, so a block retired and recycled in the
//!   window gets a birth era that backdates the new incarnation into the
//!   old one's lifetime. Expected oracle verdict:
//!   `recycle/overlapping-incarnations` (checked because IBR sessions run
//!   with `birth_era_monotonic`).
//!
//! Budget knob: `SMR_CHECK_RESURRECT_SCHEDULES` (default 400 per bug).

use conc_ds::{ConcurrentSet, HarrisList};
use smr_baselines::{HazardEras, Ibr};
use smr_check::{explore_one, replay_banner, Params, RunReport, SplitMix64, Strategy};

fn schedules_budget() -> u64 {
    std::env::var("SMR_CHECK_RESURRECT_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400)
}

fn strategy_for(i: u64) -> Strategy {
    match i % 4 {
        0 => Strategy::Random { switch_one_in: 1 },
        1 => Strategy::Random { switch_one_in: 4 },
        2 => Strategy::Pct { depth: 3 },
        _ => Strategy::Pct { depth: 10 },
    }
}

/// Runs schedules until `run` reports a violation matching `accept`, then
/// prints the replay banner for it. Panics (with the closest miss, if any)
/// when the budget is exhausted without a rediscovery.
fn hunt(what: &str, accept: &dyn Fn(&RunReport) -> bool, run: &dyn Fn(Strategy, u64) -> RunReport) {
    let budget = schedules_budget();
    let mut seeds = SplitMix64(0xB0_6005);
    let mut near_miss: Option<String> = None;
    for i in 0..budget {
        let strategy = strategy_for(i);
        let seed = seeds.next_u64();
        let report = run(strategy, seed);
        if accept(&report) {
            println!(
                "rediscovered {what} after {} schedule(s):\n{}",
                i + 1,
                replay_banner(what, "harris-list", strategy, seed, &report)
            );
            return;
        }
        if !report.clean() && near_miss.is_none() {
            near_miss = Some(replay_banner(what, "harris-list", strategy, seed, &report));
        }
    }
    panic!(
        "explorer failed to rediscover {what} within {budget} schedules{}",
        near_miss
            .map(|m| format!("; closest other failure:\n{m}"))
            .unwrap_or_default()
    );
}

#[test]
fn rediscovers_he_point_era_sweep_bug() {
    // Heavy remove/insert churn on few keys: marked chains form and the
    // era clock (epoch_freq=1) ticks on every retire, opening gaps between
    // a traverser's two announced eras.
    let params = Params {
        workers: 3,
        ops_per_worker: 12,
        key_range: 4,
        ..Params::default()
    };
    hunt(
        "he-point-era-sweep",
        &|report| {
            report.violation.as_ref().is_some_and(|v| {
                v.rule.starts_with("premature-free") || v.rule.starts_with("use-after-free")
            })
        },
        &|strategy, seed| {
            explore_one::<HazardEras, HarrisList<HazardEras>, _>(
                "he-resurrect",
                true,
                &params,
                strategy,
                seed,
                |cfg| {
                    let ds = HarrisList::<HazardEras>::new(cfg);
                    ds.smr().resurrect_point_era_sweep();
                    ds
                },
            )
        },
    );
}

#[test]
fn rediscovers_ibr_stamp_before_pop_bug() {
    // Tiny magazines force freed blocks through the shared depot, so a
    // block retired by one worker is handed to another worker's stalled
    // allocation (paused at the `ibr.alloc.stale-stamp` preempt point).
    let params = Params {
        workers: 3,
        ops_per_worker: 12,
        key_range: 4,
        magazine_cap: 2,
        ..Params::default()
    };
    hunt(
        "ibr-stamp-before-pop",
        &|report| {
            report
                .violation
                .as_ref()
                .is_some_and(|v| v.rule == "recycle/overlapping-incarnations")
        },
        &|strategy, seed| {
            explore_one::<Ibr, HarrisList<Ibr>, _>(
                "ibr-resurrect",
                true,
                &params,
                strategy,
                seed,
                |cfg| {
                    let ds = HarrisList::<Ibr>::new(cfg);
                    ds.smr().resurrect_stamp_before_pop();
                    ds
                },
            )
        },
    );
}
