//! SMR bookkeeping counters.
//!
//! The paper's evaluation reasons about *why* one reclaimer beats another —
//! signals sent (NBR's O(n²) vs NBR+'s piggybacked RGPs), neutralizations
//! taken, reclamation bursts after a delayed thread catches up, validation
//! failures under HP, and peak limbo-bag sizes (the bounded-garbage property).
//! These counters are collected per thread with zero synchronization on the
//! fast path and merged by the harness after each trial.

use crate::telemetry::Telemetry;
use std::ops::AddAssign;

/// Per-thread counters, owned by the thread's context (no atomics involved).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ThreadStats {
    /// Records allocated through the reclaimer.
    pub allocs: u64,
    /// Records passed to `retire`.
    pub retires: u64,
    /// Records actually freed.
    pub frees: u64,
    /// Neutralization signals sent by this thread (NBR/NBR+ reclaimers) or
    /// reclamation pings sent (Publish-on-Ping reclaimers).
    pub signals_sent: u64,
    /// Neutralizations taken: read phases restarted because of a signal.
    pub neutralizations: u64,
    /// Pings answered by publishing private reservations (Publish-on-Ping
    /// reclaimers): each is one promotion of thread-private state to the
    /// shared slots.
    pub pings_published: u64,
    /// Reclamation scans attempted (HiWatermark events, epoch scans, …).
    pub reclaim_scans: u64,
    /// Reclamation scans that freed nothing (e.g. blocked by a straggler).
    pub reclaim_skips: u64,
    /// Reclamation scans triggered by the operation-exit heartbeat
    /// ([`ScanPolicy`](crate::ScanPolicy)) rather than a watermark crossing.
    pub heartbeat_scans: u64,
    /// NBR+ LoWatermark reclaims piggybacked on an observed RGP.
    pub rgp_reclaims: u64,
    /// Hazard-pointer / protection validation failures (operation restarts).
    pub protect_failures: u64,
    /// Largest limbo-bag size observed (bounded-garbage evidence, Lemma 10).
    pub peak_limbo: u64,
    /// Epoch/era advances performed by this thread.
    pub epoch_advances: u64,
    /// Allocations served from a recycled block (magazine or depot) instead
    /// of the global allocator.
    pub pool_hits: u64,
    /// Pool-eligible allocations that fell through to the global allocator
    /// (cold pool / burst larger than the cached blocks).
    pub pool_misses: u64,
    /// Reclaimed blocks accepted back into the pool for reuse.
    pub pool_recycled: u64,
    /// Ping/neutralization handshake rounds this thread conceded (a peer
    /// stayed silent past its spin window and the scan was skipped).
    pub ping_concessions: u64,
    /// Orphaned records adopted from departed threads' limbo bags.
    pub orphan_adoptions: u64,
    /// Scan requests this thread published to a combiner slot instead of
    /// running its own ping round (a peer's scan was already mid-flight).
    pub combine_publishes: u64,
    /// Published peer bags this thread adopted and swept as the active
    /// combiner in its own scan round.
    pub combine_adoptions: u64,
    /// Lookups answered from the epoch-stamped memo (traversal skipped).
    pub memo_hits: u64,
    /// Lookups that consulted the memo but fell back to a full traversal
    /// (stale stamp, key mismatch, or marked node).
    pub memo_misses: u64,
    /// Tier-1 latency histograms (see [`telemetry`](crate::telemetry)).
    pub tel: Telemetry,
}

impl ThreadStats {
    /// Records a new limbo-bag high-water mark.
    #[inline]
    pub fn observe_limbo(&mut self, len: usize) {
        self.peak_limbo = self.peak_limbo.max(len as u64);
    }

    /// Unreclaimed records implied by the counters (retires minus frees).
    pub fn outstanding(&self) -> u64 {
        self.retires.saturating_sub(self.frees)
    }

    /// Fraction of pool-eligible allocations served from the recycling pool
    /// (`NaN`-free: 0 when no eligible allocation happened).
    pub fn pool_hit_rate(&self) -> f64 {
        let eligible = self.pool_hits + self.pool_misses;
        if eligible == 0 {
            0.0
        } else {
            self.pool_hits as f64 / eligible as f64
        }
    }
}

impl AddAssign for ThreadStats {
    fn add_assign(&mut self, rhs: Self) {
        self.allocs += rhs.allocs;
        self.retires += rhs.retires;
        self.frees += rhs.frees;
        self.signals_sent += rhs.signals_sent;
        self.neutralizations += rhs.neutralizations;
        self.pings_published += rhs.pings_published;
        self.reclaim_scans += rhs.reclaim_scans;
        self.reclaim_skips += rhs.reclaim_skips;
        self.heartbeat_scans += rhs.heartbeat_scans;
        self.rgp_reclaims += rhs.rgp_reclaims;
        self.protect_failures += rhs.protect_failures;
        self.peak_limbo = self.peak_limbo.max(rhs.peak_limbo);
        self.epoch_advances += rhs.epoch_advances;
        self.pool_hits += rhs.pool_hits;
        self.pool_misses += rhs.pool_misses;
        self.pool_recycled += rhs.pool_recycled;
        self.ping_concessions += rhs.ping_concessions;
        self.orphan_adoptions += rhs.orphan_adoptions;
        self.combine_publishes += rhs.combine_publishes;
        self.combine_adoptions += rhs.combine_adoptions;
        self.memo_hits += rhs.memo_hits;
        self.memo_misses += rhs.memo_misses;
        self.tel += rhs.tel;
    }
}

/// Aggregated statistics across all threads of a trial.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SmrStats {
    /// Sum of all threads' counters (peak fields are maxima).
    pub total: ThreadStats,
    /// Number of thread contexts merged in.
    pub threads: usize,
}

impl SmrStats {
    /// Merges one thread's counters into the aggregate.
    pub fn merge(&mut self, t: &ThreadStats) {
        self.total += *t;
        self.threads += 1;
    }

    /// Convenience: total unreclaimed records across all merged threads.
    pub fn outstanding(&self) -> u64 {
        self.total.outstanding()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_sums_and_maxes() {
        let mut a = ThreadStats {
            allocs: 1,
            retires: 10,
            frees: 4,
            peak_limbo: 7,
            ..Default::default()
        };
        let b = ThreadStats {
            allocs: 2,
            retires: 5,
            frees: 5,
            peak_limbo: 3,
            signals_sent: 9,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.allocs, 3);
        assert_eq!(a.retires, 15);
        assert_eq!(a.frees, 9);
        assert_eq!(a.peak_limbo, 7);
        assert_eq!(a.signals_sent, 9);
        assert_eq!(a.outstanding(), 6);
    }

    #[test]
    fn merge_counts_threads() {
        let mut agg = SmrStats::default();
        for i in 0..4 {
            let t = ThreadStats {
                retires: i,
                ..Default::default()
            };
            agg.merge(&t);
        }
        assert_eq!(agg.threads, 4);
        assert_eq!(agg.total.retires, 1 + 2 + 3);
    }

    #[test]
    fn observe_limbo_tracks_maximum() {
        let mut t = ThreadStats::default();
        t.observe_limbo(3);
        t.observe_limbo(11);
        t.observe_limbo(5);
        assert_eq!(t.peak_limbo, 11);
    }

    #[test]
    fn outstanding_saturates() {
        let t = ThreadStats {
            retires: 3,
            frees: 5,
            ..Default::default()
        };
        assert_eq!(t.outstanding(), 0);
    }
}
