//! Figure 7 (appendix, E3 extension): Harris lock-free list throughput across
//! list sizes. At CI scale two sizes are swept (small = high contention,
//! larger = moderate); the full sweep (200 / 2 K / 20 K × three mixes) is
//! available via `cargo run -p nbr-bench --release --bin experiments -- --fig7`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbr_bench::helpers;
use smr_harness::families::HarrisListFamily;
use smr_harness::{run_with, WorkloadMix};

fn bench_fig7(c: &mut Criterion) {
    let threads = helpers::bench_threads();
    let (samples, warm, meas) = helpers::criterion_times();
    for (key_range, label) in [(200u64, "range200"), (2_048u64, "range2k")] {
        let mut group = c.benchmark_group(format!("fig7_harris_{label}"));
        group
            .sample_size(samples)
            .warm_up_time(warm)
            .measurement_time(meas)
            .throughput(Throughput::Elements(helpers::OPS_PER_ITER));
        for &kind in helpers::bench_smr_set() {
            group.bench_with_input(
                BenchmarkId::from_parameter(kind.label()),
                &kind,
                |b, &kind| {
                    b.iter_custom(|iters| {
                        let spec = helpers::spec_for_iters(
                            WorkloadMix::UPDATE_HEAVY,
                            key_range,
                            threads,
                            iters,
                        );
                        let r = run_with::<HarrisListFamily>(kind, &spec, helpers::bench_config());
                        r.duration
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
