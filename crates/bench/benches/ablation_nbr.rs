//! Ablation: NBR vs NBR+ signal traffic (the motivation for Section 5).
//!
//! Runs the same update-heavy DGT workload under NBR and NBR+ and reports
//! signals sent, records freed and the signals-per-thousand-frees ratio. The
//! paper's claim: NBR needs O(n²) signals for all threads to reclaim, NBR+
//! piggybacks on relaxed grace periods and gets by with far fewer.

use smr_harness::experiments::{ablation_signal_counts, ExperimentScale};
use smr_harness::report;

fn main() {
    let mut scale = ExperimentScale::quick();
    // Oversubscribe to at least 4 worker threads regardless of the host's
    // core count: at CI's 2-core scale NBR and NBR+ send nearly the same
    // number of signals (a ~1.01x "reduction" that says nothing), because a
    // reclaiming thread has only one peer to neutralize either way. With 4+
    // threads every NBR reclamation pings n−1 peers while NBR+ piggybacks
    // most rounds on relaxed grace periods, so the signal-count gap the
    // ablation exists to show is measurable per push.
    scale.thread_counts = vec![scale.thread_counts.last().copied().unwrap_or(2).max(4)];
    let results = ablation_signal_counts(&scale);
    println!(
        "{}",
        report::to_table("Ablation — NBR vs NBR+ signal traffic", &results)
    );
    for r in &results {
        let signals = r.smr_totals.signals_sent;
        let frees = r.smr_totals.frees.max(1);
        println!(
            "{:>5}: {:>8} signals, {:>9} frees, {:>8.2} signals per 1000 freed records, {} RGP piggyback reclaims",
            r.smr,
            signals,
            r.smr_totals.frees,
            signals as f64 * 1000.0 / frees as f64,
            r.smr_totals.rgp_reclaims,
        );
    }
    let nbr = results.iter().find(|r| r.smr == "NBR");
    let plus = results.iter().find(|r| r.smr == "NBR+");
    if let (Some(nbr), Some(plus)) = (nbr, plus) {
        let nbr_ratio = nbr.smr_totals.signals_sent as f64 / nbr.smr_totals.frees.max(1) as f64;
        let plus_ratio = plus.smr_totals.signals_sent as f64 / plus.smr_totals.frees.max(1) as f64;
        println!(
            "\nsignals per freed record: NBR = {nbr_ratio:.4}, NBR+ = {plus_ratio:.4} ({}x reduction)",
            if plus_ratio > 0.0 { nbr_ratio / plus_ratio } else { f64::INFINITY }
        );
    }
}
